"""Tests for the access schemes: placements, lowering, traits, areas."""

import pytest

from repro.core import (
    FIGURE12_DESIGNS,
    TablePlacement,
    available_schemes,
    make_scheme,
)
from repro.core.compare import COLUMNS, ROWS, comparison_matrix, render_table
from repro.dram.commands import IOMode, RequestType, RowKind


def table(record_bytes=1024, n=64, base=0):
    return TablePlacement(base, record_bytes, n)


class TestRegistry:
    def test_all_designs_available(self):
        names = available_schemes()
        for d in FIGURE12_DESIGNS:
            assert d in names
        assert "baseline" in names and "column-store" in names

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            make_scheme("HBM-PIM")

    def test_gather_factor_configurable(self):
        s = make_scheme("SAM-en", gather_factor=4)
        assert s.gather_factor == 4
        assert s.sector_bytes == 16  # 8-bit granularity -> 16B sectors

    def test_default_gather_factor_is_ssc_dsd(self):
        s = make_scheme("SAM-en")
        assert s.gather_factor == 8
        assert s.sector_bytes == 8  # 4-bit granularity -> 8B sectors


class TestPlacements:
    def test_row_major_contiguous(self):
        s = make_scheme("baseline")
        p = s.placement(table())
        assert p.addr_of(0, 0) == 0
        assert p.addr_of(1, 0) == 1024
        assert p.addr_of(2, 100) == 2148

    def test_row_major_bounds(self):
        p = make_scheme("baseline").placement(table(n=4))
        with pytest.raises(IndexError):
            p.addr_of(4, 0)
        with pytest.raises(IndexError):
            p.addr_of(0, 1024)

    def test_column_major_groups_fields(self):
        s = make_scheme("column-store")
        p = s.placement(table(n=100))
        # field 0 of consecutive records is consecutive
        assert p.addr_of(1, 0) - p.addr_of(0, 0) == 8
        # field regions are table-sized apart
        assert p.addr_of(0, 8) - p.addr_of(0, 0) == 100 * 8

    def test_sam_io_placement_keeps_records_in_rows(self):
        """SAM-IO/en: a gather group of 8 x 1KB records fits one 8KB row."""
        s = make_scheme("SAM-IO")
        p = s.placement(table())
        first = s.mapper.decode(p.addr_of(0, 80))
        for r in range(1, 8):
            d = s.mapper.decode(p.addr_of(r, 80))
            assert (d.rank, d.bank, d.row) == (
                first.rank, first.bank, first.row
            )

    def test_sam_sub_placement_stacks_rows_same_bank(self):
        """SAM-sub: group members live in consecutive rows of one bank."""
        s = make_scheme("SAM-sub")
        p = s.placement(table())
        decoded = [s.mapper.decode(p.addr_of(r, 0)) for r in range(8)]
        assert len({(d.rank, d.bank) for d in decoded}) == 1
        assert [d.row for d in decoded] == list(
            range(decoded[0].row, decoded[0].row + 8)
        )

    def test_sam_sub_groups_spread_across_banks(self):
        s = make_scheme("SAM-sub")
        p = s.placement(table(n=256))
        banks = {
            s.mapper.decode(p.addr_of(g * 8, 0)).bank for g in range(16)
        }
        assert len(banks) > 8  # bank-level parallelism across groups

    def test_rc_nvm_vertical_span(self):
        """RC-NVM aligns records over a KB-magnitude vertical space."""
        s = make_scheme("RC-NVM-wd")
        p = s.placement(table(record_bytes=128, n=1024))
        d0 = s.mapper.decode(p.addr_of(0, 0))
        d1 = s.mapper.decode(p.addr_of(1, 0))
        assert d1.row == d0.row + 1
        assert d1.bank == d0.bank

    def test_gs_dram_segment_major(self):
        s = make_scheme("GS-DRAM")
        p = s.placement(table(record_bytes=128, n=100))
        # Figure 11(b): segment 1 of record 0 is a table-length away
        assert p.addr_of(0, 64) - p.addr_of(0, 0) == 100 * 64

    def test_gs_dram_small_records_stay_row_major(self):
        s = make_scheme("GS-DRAM")
        p = s.placement(table(record_bytes=32, n=10))
        assert p.addr_of(1, 0) - p.addr_of(0, 0) == 32

    def test_vertical_rejects_tiny_group(self):
        from repro.core.placements import VerticalPlacement

        s = make_scheme("baseline")
        with pytest.raises(ValueError):
            VerticalPlacement(table(), s, group=1)

    def test_partition_granularity(self):
        assert make_scheme("baseline").placement(
            table()
        ).partition_granularity == 1
        assert make_scheme("SAM-sub").placement(
            table()
        ).partition_granularity == 8
        assert make_scheme("RC-NVM-wd").placement(
            table(n=1024)
        ).partition_granularity == 64


class TestLowering:
    def test_baseline_has_no_gather(self):
        s = make_scheme("baseline")
        assert s.lower_gather_read([0, 1024]) is None

    def test_sam_io_gather_single_burst(self):
        s = make_scheme("SAM-IO")
        p = s.placement(table())
        addrs = [p.addr_of(r, 80) for r in range(8)]
        plan = s.lower_gather_read(addrs)
        assert len(plan.requests) == 1
        req = plan.requests[0]
        assert req.io_mode is IOMode.STRIDE
        assert req.gather == 8
        assert len(plan.fills) == 8

    def test_sam_io_gather_fills_are_sectors(self):
        s = make_scheme("SAM-IO")
        p = s.placement(table())
        addrs = [p.addr_of(r, 80) for r in range(8)]
        plan = s.lower_gather_read(addrs)
        for (line, mask), addr in zip(plan.fills, addrs):
            assert line == addr - addr % 64
            assert mask == 1 << ((addr % 64) // s.sector_bytes)

    def test_sam_io_gather_splits_across_rows(self):
        """Elements in different rows cannot share one stride burst."""
        s = make_scheme("SAM-IO")
        base_row_stride = 8192  # next row region is another bank; use
        addrs = [80, 80 + 32 * 8192 * 2]  # same bank, different row
        plan = s.lower_gather_read(addrs)
        assert len(plan.requests) == 2

    def test_sam_io_single_element_falls_back_to_regular(self):
        s = make_scheme("SAM-IO")
        plan = s.lower_gather_read([80])
        assert plan.requests[0].io_mode is IOMode.X4

    def test_sam_sub_gather_uses_column_activation(self):
        s = make_scheme("SAM-sub")
        p = s.placement(table())
        addrs = [p.addr_of(r, 80) for r in range(8)]
        plan = s.lower_gather_read(addrs)
        assert len(plan.requests) == 1
        assert plan.requests[0].row_kind is RowKind.COLUMN
        assert plan.requests[0].io_mode is IOMode.X4  # no DQ change

    def test_sam_sub_distinct_gathers_get_distinct_column_rows(self):
        """The global column buffer holds one gather: two gathers that
        target the *same bank* must open different column-rows."""
        s = make_scheme("SAM-sub")
        p = s.placement(table(n=512))
        group_a, group_b = 0, 32  # 32 banks*ranks apart -> same bank
        plan_a = s.lower_gather_read(
            [p.addr_of(8 * group_a + r, 80) for r in range(8)]
        )
        plan_b = s.lower_gather_read(
            [p.addr_of(8 * group_b + r, 80) for r in range(8)]
        )
        assert (
            plan_a.requests[0].addr.bank == plan_b.requests[0].addr.bank
        )
        assert plan_a.requests[0].row_id() != plan_b.requests[0].row_id()

    def test_rc_nvm_column_row_reused_within_region(self):
        """RC-NVM-wd: consecutive gathers of one field share a column-row."""
        s = make_scheme("RC-NVM-wd")
        p = s.placement(table(record_bytes=128, n=1024))
        plan_a = s.lower_gather_read([p.addr_of(r, 80) for r in range(8)])
        plan_b = s.lower_gather_read(
            [p.addr_of(r, 80) for r in range(8, 16)]
        )
        assert plan_a.requests[0].row_id() == plan_b.requests[0].row_id()

    def test_rc_nvm_field_switch_changes_column_row(self):
        s = make_scheme("RC-NVM-wd")
        p = s.placement(table(record_bytes=128, n=1024))
        plan_a = s.lower_gather_read([p.addr_of(r, 80) for r in range(8)])
        plan_b = s.lower_gather_read([p.addr_of(r, 24) for r in range(8)])
        assert plan_a.requests[0].row_id() != plan_b.requests[0].row_id()

    def test_rc_nvm_bit_pays_internal_bursts(self):
        s = make_scheme("RC-NVM-bit")
        p = s.placement(table(record_bytes=128, n=64))
        plan = s.lower_gather_read([p.addr_of(r, 80) for r in range(8)])
        assert plan.requests[0].internal_bursts == 3

    def test_gs_dram_ecc_gather_adds_ecc_read(self):
        s = make_scheme("GS-DRAM-ecc")
        p = s.placement(table(record_bytes=128, n=64))
        plan = s.lower_gather_read([p.addr_of(r, 80) for r in range(8)])
        assert len(plan.requests) == 2  # data gather + ECC line

    def test_gs_dram_ecc_gather_write_rmw(self):
        s = make_scheme("GS-DRAM-ecc")
        p = s.placement(table(record_bytes=128, n=64))
        plan = s.lower_gather_write([p.addr_of(r, 80) for r in range(8)])
        kinds = [r.type for r in plan.requests]
        assert kinds.count(RequestType.READ) == 1
        assert kinds.count(RequestType.WRITE) == 2

    def test_gs_dram_plain_has_no_ecc_traffic(self):
        s = make_scheme("GS-DRAM")
        p = s.placement(table(record_bytes=128, n=64))
        plan = s.lower_gather_read([p.addr_of(r, 80) for r in range(8)])
        assert len(plan.requests) == 1

    def test_strided_store_no_rmw_for_sam(self):
        """A strided element is one codeword: sstore writes directly."""
        s = make_scheme("SAM-en")
        p = s.placement(table())
        plan = s.lower_gather_write([p.addr_of(r, 80) for r in range(8)])
        assert all(r.type is RequestType.WRITE for r in plan.requests)


class TestTraitsAndTiming:
    def test_table1_matrix_matches_paper(self):
        m = comparison_matrix()
        # spot-check the distinguishing cells of Table 1
        assert m["GS-DRAM"]["Reliability"] == "x"
        assert m["SAM-en"]["Reliability"] == "v"
        assert m["GS-DRAM"]["Memory Controller"] == "x"
        assert m["SAM-IO"]["Critical-Word-First"] == "x"
        assert m["SAM-en"]["Critical-Word-First"] == "v"
        assert m["RC-NVM-bit"]["Performance"] == "x"
        assert m["SAM-sub"]["Performance"] == "o"
        assert m["SAM-en"]["Area Overhead"] == "v"
        assert m["RC-NVM-wd"]["Area Overhead"] == "x"
        assert m["GS-DRAM"]["Mode Switch Delay"] == "v"
        assert m["SAM-en"]["Mode Switch Delay"] == "o"

    def test_render_table_includes_all_rows(self):
        text = render_table()
        for row in ROWS:
            assert row in text
        for col in COLUMNS:
            assert col in text

    def test_nvm_schemes_use_rram_timing(self):
        s = make_scheme("RC-NVM-wd")
        assert s.timing.tRCD > 40  # RRAM 35 scaled by ~33% area
        assert s.timing.tREFI == 0

    def test_area_scaling_applies_to_sam_sub(self):
        s = make_scheme("SAM-sub")
        assert s.timing.tRCD == 18  # 17 * 1.072 rounded

    def test_sam_io_timing_unchanged(self):
        s = make_scheme("SAM-IO")
        assert s.timing.tRCD == 17

    def test_area_reports(self):
        assert make_scheme("SAM-IO").area.silicon_fraction < 0.0001
        assert 0.005 < make_scheme("SAM-en").area.silicon_fraction < 0.01
        assert 0.07 < make_scheme("SAM-sub").area.silicon_fraction < 0.08
        assert make_scheme("RC-NVM-wd").area.extra_metal_layers == 2

    def test_power_configs(self):
        assert make_scheme("SAM-IO").power_config.stride_internal_bursts == 4
        assert make_scheme("SAM-en").power_config.stride_act_fraction == 0.25
        assert make_scheme("SAM-sub").power_config.background_scale == 1.02
        assert make_scheme("RC-NVM-wd").power_config.rram
