"""Integration tests: the paper's qualitative results must hold end to end.

These run full simulations (small tables) and assert the *shape* of the
evaluation: who wins, in which direction, and by roughly what class of
factor -- the reproduction's acceptance criteria.
"""

import pytest

from repro.workloads import geomean, make_tables
from repro.imdb import by_name
from repro.sim import run_ideal, run_query

N_TA = 512
N_TB = 1024


def speedup(design, qname, **kw):
    query = by_name()[qname]
    base = run_query("baseline", query, make_tables(N_TA, N_TB))
    res = run_query(design, query, make_tables(N_TA, N_TB), **kw)
    assert str(res.result) == str(base.result), "wrong query answer"
    return base.cycles / res.cycles


class TestHeadlineClaims:
    def test_sam_accelerates_column_queries(self):
        """SAM-IO/en speed up strided queries by ~3-5x."""
        for design in ("SAM-IO", "SAM-en"):
            s = speedup(design, "Q3")
            assert 2.5 < s < 6.0, f"{design} Q3 speedup {s}"

    def test_sam_io_en_no_row_query_degradation(self):
        """The headline advantage over SAM-sub/RC-NVM: row-preferring
        queries are unaffected (< 1% in the paper)."""
        for qname in ("Qs1", "Qs3", "Qs5"):
            s = speedup("SAM-en", qname)
            assert s == pytest.approx(1.0, abs=0.02), f"{qname}: {s}"

    def test_sam_sub_degrades_row_queries(self):
        """SAM-sub's vertical alignment costs on Qs queries."""
        s = speedup("SAM-sub", "Qs3")
        assert s < 0.95

    def test_rc_nvm_degrades_row_queries_more(self):
        assert speedup("RC-NVM-wd", "Qs3") < speedup("SAM-en", "Qs3")

    def test_rc_nvm_writes_suffer(self):
        """RRAM write latency: Qs6 inserts collapse on RC-NVM."""
        s = speedup("RC-NVM-wd", "Qs6")
        assert s < 0.6

    def test_gs_dram_ecc_pays_for_protection(self):
        """GS-DRAM-ecc is distinctly slower than plain GS-DRAM."""
        plain = speedup("GS-DRAM", "Q3")
        ecc = speedup("GS-DRAM-ecc", "Q3")
        assert ecc < 0.75 * plain

    def test_sam_en_beats_gs_dram_ecc(self):
        """Among ECC-capable designs, SAM-en wins (the paper's point)."""
        assert speedup("SAM-en", "Q3") > speedup("GS-DRAM-ecc", "Q3")

    def test_sam_beats_rc_nvm_on_dram_substrate(self):
        assert speedup("SAM-en", "Q1") > speedup("RC-NVM-wd", "Q1")

    def test_update_queries_benefit_from_sstore(self):
        s = speedup("SAM-en", "Q12")
        assert s > 2.0


class TestGranularity:
    def test_finer_granularity_faster(self):
        """Figure 14(b): 4-bit > 8-bit > 16-bit granularity."""
        speeds = {
            g: speedup("SAM-en", "Q3", gather_factor=f)
            for g, f in ((16, 2), (8, 4), (4, 8))
        }
        assert speeds[4] > speeds[8] > speeds[16]


class TestIdealEnvelope:
    def test_ideal_upper_bounds_q_queries(self):
        """The per-query ideal store is at least as good as SAM on plain
        field-scan queries."""
        query = by_name()["Q3"]
        base = run_query("baseline", query, make_tables(N_TA, N_TB))
        ideal = run_ideal(query, make_tables(N_TA, N_TB))
        sam = run_query("SAM-en", query, make_tables(N_TA, N_TB))
        assert base.cycles / ideal.cycles >= 0.9 * (
            base.cycles / sam.cycles
        )

    def test_ideal_is_baseline_for_row_queries(self):
        query = by_name()["Qs1"]
        base = run_query("baseline", query, make_tables(N_TA, N_TB))
        ideal = run_ideal(query, make_tables(N_TA, N_TB))
        assert ideal.cycles == base.cycles


class TestEnergyShapes:
    def test_sam_io_draws_more_power_but_less_energy(self):
        """Figure 13: SAM-IO raises power (x16-class internal traffic)
        yet improves energy efficiency by finishing much earlier."""
        query = by_name()["Q3"]
        base = run_query("baseline", query, make_tables(N_TA, N_TB))
        sam = run_query("SAM-IO", query, make_tables(N_TA, N_TB))
        assert sam.power.total_mw > 1.2 * base.power.total_mw
        assert sam.energy_efficiency_over(base) > 1.5

    def test_sam_en_more_efficient_than_sam_io(self):
        query = by_name()["Q3"]
        io = run_query("SAM-IO", query, make_tables(N_TA, N_TB))
        en = run_query("SAM-en", query, make_tables(N_TA, N_TB))
        assert en.power.total_nj < io.power.total_nj

    def test_rram_background_advantage_on_reads(self):
        query = by_name()["Q3"]
        base = run_query("baseline", query, make_tables(N_TA, N_TB))
        rc = run_query("RC-NVM-wd", query, make_tables(N_TA, N_TB))
        assert rc.power.power_mw("background") < base.power.power_mw(
            "background"
        )


class TestDeterminism:
    def test_runs_are_reproducible(self):
        a = run_query("SAM-en", by_name()["Q1"], make_tables(N_TA, N_TB))
        b = run_query("SAM-en", by_name()["Q1"], make_tables(N_TA, N_TB))
        assert a.cycles == b.cycles
        assert a.result == b.result

    def test_all_schemes_all_queries_complete(self):
        """Smoke: every (design, query) pair simulates and agrees on the
        query answer."""
        from repro.core import FIGURE12_DESIGNS

        for qname in ("Q1", "Q4", "Q8", "Q11", "Qs2", "Qs6"):
            query = by_name()[qname]
            expected = None
            for design in ("baseline",) + tuple(FIGURE12_DESIGNS):
                result = run_query(
                    design, query, make_tables(128, 256)
                )
                if expected is None:
                    expected = str(result.result)
                assert str(result.result) == expected, (qname, design)
