"""Tests for the perf-baseline bench harness and its compare gate."""

import copy
import json

import pytest

from repro.harness.bench import (
    BENCH_SCHEMA_VERSION,
    compare_bench,
    load_bench,
    render_bench,
    run_bench,
    write_bench,
)

FAST_KERNELS = (("baseline", "Q3"), ("SAM-en", "Q3"))


@pytest.fixture(scope="module")
def payload():
    return run_bench("test", n_ta=64, n_tb=128, repeats=1,
                     kernels=FAST_KERNELS)


class TestRunBench:
    def test_payload_shape(self, payload):
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["kind"] == "bench"
        assert payload["label"] == "test"
        assert payload["created"].endswith("Z")
        assert len(payload["kernels"]) == len(FAST_KERNELS)
        for row in payload["kernels"]:
            assert row["cycles"] > 0
            assert row["wall_s"] > 0
            assert row["cycles_per_sec"] > 0
            assert row["mem_ops"] > 0
        assert payload["totals"]["cycles"] == sum(
            r["cycles"] for r in payload["kernels"]
        )

    def test_render(self, payload):
        text = render_bench(payload)
        assert "baseline/Q3" in text
        assert "total" in text


class TestWriteLoad:
    def test_roundtrip_creates_directory(self, payload, tmp_path):
        out = tmp_path / "does" / "not" / "exist"
        path = write_bench(payload, out)
        assert path == out / "BENCH_test.json"
        loaded = load_bench(path)
        assert loaded["kernels"] == json.loads(
            json.dumps(payload["kernels"])
        )

    def test_load_rejects_non_bench(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"kind": "run"}')
        with pytest.raises(ValueError):
            load_bench(path)


class TestCompare:
    def test_identical_payloads_pass(self, payload):
        regressions, notes = compare_bench(payload, payload)
        assert regressions == []
        assert notes == []

    def test_injected_regression_gates(self, payload):
        baseline = copy.deepcopy(payload)
        for row in baseline["kernels"]:
            row["wall_s"] /= 100.0
        regressions, _notes = compare_bench(payload, baseline,
                                            threshold=2.0)
        assert len(regressions) == len(FAST_KERNELS)
        assert "x > 2.00x" in regressions[0]

    def test_threshold_respected(self, payload):
        baseline = copy.deepcopy(payload)
        for row in baseline["kernels"]:
            row["wall_s"] /= 100.0
        regressions, _notes = compare_bench(payload, baseline,
                                            threshold=1000.0)
        assert regressions == []

    def test_cycle_drift_is_note_not_regression(self, payload):
        baseline = copy.deepcopy(payload)
        baseline["kernels"][0]["cycles"] += 1
        regressions, notes = compare_bench(payload, baseline)
        assert regressions == []
        assert any("behavior change" in n for n in notes)

    def test_missing_kernels_noted_both_ways(self, payload):
        baseline = copy.deepcopy(payload)
        extra = copy.deepcopy(baseline["kernels"][0])
        extra["kernel"] = ["column-store", "Q1"]
        baseline["kernels"].append(extra)
        current = copy.deepcopy(payload)
        current["kernels"].append(dict(extra, kernel=["SAM-sub", "Q1"]))
        regressions, notes = compare_bench(current, baseline)
        assert regressions == []
        assert any("no baseline entry" in n for n in notes)
        assert any("missing from current" in n for n in notes)
