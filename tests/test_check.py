"""Tests for the repro.check correctness-tooling subsystem.

Three layers:

* every timing rule of :class:`TimingProtocolChecker` fires on a
  hand-built known-violating command stream and stays silent on legal
  spacings;
* known-good simulations (every design, the figure12 harness, parallel
  sweeps) run under ``check`` without a single violation;
* the fuzzer finds deliberately injected timing-table corruption and
  shrinks it to a replayable JSON reproducer.
"""

import json

import pytest

from repro.check import (
    DataOracle,
    FunctionalMemory,
    OracleError,
    ProtocolError,
    PlanValidator,
    TimingProtocolChecker,
    generate_case,
    reference_line,
    replay,
    run_case,
    run_fuzz,
)
from repro.check.fuzz import FuzzCase
from repro.core.registry import make_scheme
from repro.dram.commands import Command, IOMode
from repro.dram.geometry import Geometry
from repro.dram.timing import preset
from repro.workloads import make_tables
from repro.imdb import by_name
from repro.sim import run_query

T = preset("DDR4-2400")


def checker(**kw):
    kw.setdefault("strict", False)
    return TimingProtocolChecker(T, Geometry(), **kw)


def rules(c):
    return [v.rule for v in c.violations]


# ---------------------------------------------------------------------------
# Per-rule known-violating streams
# ---------------------------------------------------------------------------

class TestTimingRules:
    def test_trcd_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(5, Command.RD, rank=0, bank=0, row=5)
        assert "tRCD" in rules(c)

    def test_trcd_ok_at_boundary(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=5)
        assert not c.violations

    def test_trp_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRAS, Command.PRE, rank=0, bank=0)
        c.on_command(T.tRAS + T.tRP - 1, Command.ACT, rank=0, bank=0, row=6)
        assert rules(c) == ["tRP"]

    def test_tras_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRAS - 1, Command.PRE, rank=0, bank=0)
        assert rules(c) == ["tRAS"]

    def test_trrd_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        # bank 8 is another bank group: tRRD_S applies
        c.on_command(T.tRRD_S - 1, Command.ACT, rank=0, bank=8, row=5)
        assert rules(c) == ["tRRD"]

    def test_trrd_same_group_needs_long_gap(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        # bank 1 shares bank group 0: tRRD_L applies
        c.on_command(T.tRRD_S, Command.ACT, rank=0, bank=1, row=5)
        assert rules(c) == ["tRRD"]

    def test_tfaw_violation(self):
        c = checker()
        banks = (0, 4, 8, 12, 1)  # rotate groups to keep tRRD legal
        for i, bank in enumerate(banks):
            c.on_command(i * T.tRRD_L, Command.ACT, rank=0, bank=bank,
                         row=5)
        # the 5th ACT at 4*tRRD_L = 24 < acts[0] + tFAW = 26
        assert rules(c) == ["tFAW"]

    def test_tccd_l_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=5)
        c.on_command(T.tRCD + T.tCCD_L - 1, Command.RD, rank=0, bank=0,
                     row=5)
        assert "tCCD_L" in rules(c)

    def test_twr_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRCD, Command.WR, rank=0, bank=0, row=5)
        # past tRAS but inside write recovery
        c.on_command(T.tRAS + 6, Command.PRE, rank=0, bank=0)
        assert rules(c) == ["tWR"]

    def test_trtp_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(40, Command.RD, rank=0, bank=0, row=5)
        c.on_command(40 + T.tRTP - 1, Command.PRE, rank=0, bank=0)
        assert rules(c) == ["tRTP"]

    def test_twtr_violation(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRRD_L, Command.ACT, rank=0, bank=1, row=5)
        c.on_command(T.tRCD, Command.WR, rank=0, bank=0, row=5)
        c.on_command(T.tRCD + 3, Command.RD, rank=0, bank=1, row=5)
        assert "tWTR" in rules(c)

    def test_trfc_violation(self):
        c = checker()
        c.on_command(10, Command.REF, rank=0)
        c.on_command(10 + T.tRFC - 1, Command.ACT, rank=0, bank=0, row=5)
        assert rules(c) == ["tRFC"]

    def test_trfc_ok_after_blackout(self):
        c = checker()
        c.on_command(10, Command.REF, rank=0)
        c.on_command(10 + T.tRFC, Command.ACT, rank=0, bank=0, row=5)
        assert not c.violations

    def test_ref_with_open_bank(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(50, Command.REF, rank=0)
        assert "ref-open-bank" in rules(c)

    def test_tmod_io_violation(self):
        c = checker()
        c.on_command(10, Command.MRS, rank=0, bank=0,
                     io_mode=IOMode.STRIDE)
        c.on_command(10 + T.tMOD_IO - 1, Command.ACT, rank=0, bank=0,
                     row=5)
        assert rules(c) == ["tMOD_IO"]

    def test_act_on_open_bank(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(100, Command.ACT, rank=0, bank=0, row=6)
        assert "act-on-open" in rules(c)

    def test_cas_row_mismatch(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=6)
        assert "cas-row-mismatch" in rules(c)

    def test_cas_on_closed_bank(self):
        c = checker()
        c.on_command(0, Command.RD, rank=0, bank=0, row=5)
        assert "cas-on-closed" in rules(c)

    def test_command_bus_single_slot(self):
        c = checker()
        c.on_command(5, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(5, Command.ACT, rank=0, bank=4, row=5)
        assert "command-bus" in rules(c)

    def test_data_bus_overlap_across_ranks(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(2, Command.ACT, rank=1, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=5)
        # second read's burst lands inside the first burst's window
        c.on_command(T.tRCD + 2, Command.RD, rank=1, bank=0, row=5)
        assert "data-bus-overlap" in rules(c)

    def test_trtr_rank_switch_bubble(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(2, Command.ACT, rank=1, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=5)
        # back to back but not overlapping: misses the tRTR bubble only
        c.on_command(T.tRCD + T.tBL + 1, Command.RD, rank=1, bank=0, row=5)
        assert "tRTR" in rules(c)

    def test_io_mode_mismatch(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(T.tRCD, Command.RD, rank=0, bank=0, row=5,
                     io_mode=IOMode.STRIDE)
        assert "io-mode" in rules(c)

    def test_strict_mode_raises(self):
        c = TimingProtocolChecker(T, Geometry(), strict=True)
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        with pytest.raises(ProtocolError) as err:
            c.on_command(5, Command.RD, rank=0, bank=0, row=5)
        assert err.value.violation.rule == "tRCD"
        # the violation carries the offending command window
        assert len(err.value.violation.window) == 2

    def test_collect_mode_caps_violations(self):
        c = checker(max_violations=3)
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        with pytest.raises(ProtocolError):
            for i in range(10):
                c.on_command(1 + i, Command.RD, rank=0, bank=0, row=5)
        assert len(c.violations) == 3

    def test_violation_serializes(self):
        c = checker()
        c.on_command(0, Command.ACT, rank=0, bank=0, row=5)
        c.on_command(5, Command.RD, rank=0, bank=0, row=5)
        payload = c.violations[0].to_dict()
        assert payload["rule"] == "tRCD"
        assert json.dumps(payload)  # JSON-serializable as-is


# ---------------------------------------------------------------------------
# Known-good runs stay silent
# ---------------------------------------------------------------------------

class TestKnownGood:
    @pytest.mark.parametrize(
        "design", ["baseline", "SAM-sub", "SAM-IO", "SAM-en", "GS-DRAM-ecc",
                   "RC-NVM-wd", "sub-rank"]
    )
    def test_design_runs_clean_under_check(self, design):
        query = by_name()["Q3"]
        result = run_query(design, query, make_tables(64, 64), check=True)
        assert result.metrics["check.commands"] > 0
        assert "check.violations" not in result.metrics

    def test_refresh_traffic_is_legal(self):
        case = FuzzCase(
            seed=0, index=0, scheme="baseline", gather_factor=8,
            record_bytes=64, n_records=64, refresh=True,
            ops=tuple(("load", i, 0) for i in range(40)),
        )
        result = run_case(case)
        assert not result.failed
        assert result.commands > 40  # loads plus refresh machinery


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------

class TestOracle:
    def test_plan_validator_accepts_real_lowering(self):
        scheme = make_scheme("SAM-IO", gather_factor=8)
        validator = PlanValidator(scheme, strict=True)
        addrs = [64 * 128 * 7 + 8 * i for i in range(8)]
        validator.on_plan("read", addrs, scheme.lower_gather_read(addrs))
        assert validator.plans_seen == 1

    def test_plan_validator_rejects_tampered_plan(self):
        scheme = make_scheme("SAM-IO", gather_factor=8)
        validator = PlanValidator(scheme, strict=True)
        addrs = [64 * 128 * 7 + 8 * i for i in range(8)]
        plan = scheme.lower_gather_read(addrs)
        plan.requests[0].gather += 1  # a lowering bug
        with pytest.raises(OracleError) as err:
            validator.on_plan("read", addrs, plan)
        assert err.value.mismatch.kind == "plan-requests"

    def test_plan_validator_rejects_missing_fill(self):
        scheme = make_scheme("SAM-en", gather_factor=8)
        validator = PlanValidator(scheme, strict=True)
        addrs = [64 * 128 * 3 + 8 * i for i in range(8)]
        plan = scheme.lower_gather_read(addrs)
        plan.fills.pop()
        with pytest.raises(OracleError) as err:
            validator.on_plan("read", addrs, plan)
        assert err.value.mismatch.kind == "fills"

    def test_functional_memory_roundtrip(self):
        mem = FunctionalMemory()
        assert mem.read_line(128) == reference_line(128)
        mem.write(100, b"\xaa" * 8)  # unaligned write inside line 64
        assert mem.read(100, 8) == b"\xaa" * 8
        # neighbouring bytes keep the reference pattern
        assert mem.read(96, 4) == reference_line(64)[32:36]

    def test_expected_gather_spans_lines(self):
        mem = FunctionalMemory()
        addrs = [0, 64, 200]
        got = mem.expected_gather(addrs, 8)
        assert got == (reference_line(0)[:8] + reference_line(64)[:8]
                       + reference_line(192)[8:16])

    def test_data_oracle_flags_uncorrectable_gather(self):
        oracle = DataOracle(strict=False)
        rng_lines = [bytes(range(64))] * 4
        # two corrupted chips exceed SSC correction: flagged, not silent
        oracle.check_gather("transposed", 0, 0, [0, 1, 2, 3], 0, rng_lines,
                            faulty_chip=3, fault_mask=0xFFFF)
        oracle.check_gather("transposed", 0, 0, [0, 1, 2, 3], 0, rng_lines)
        assert not oracle.mismatches  # single chip corrected, clean pass ok
        oracle2 = DataOracle(strict=False)
        datapath_lines = [bytes(64)] * 4
        oracle2.check_gather("default", 0, 0, [0, 1, 2, 3], 1,
                             datapath_lines)
        assert not oracle2.mismatches


# ---------------------------------------------------------------------------
# Checked sweeps: parallel execution stays byte-identical
# ---------------------------------------------------------------------------

class TestCheckedSweeps:
    def test_parallel_checked_sweep_matches_serial(self):
        from repro.exp import SweepEngine
        from repro.harness.figure12 import run_figure12
        from repro.obs.artifacts import to_jsonable

        kwargs = dict(n_ta=64, n_tb=64, designs=["SAM-en"],
                      queries=["Q3", "Qs1"], include_ideal=True)
        eng1 = SweepEngine(jobs=1, check=True)
        eng2 = SweepEngine(jobs=2, check=True)
        serial = run_figure12(engine=eng1, **kwargs)
        par = run_figure12(engine=eng2, **kwargs)
        dump = lambda r: json.dumps(to_jsonable(r.payload()), sort_keys=True)
        assert dump(serial) == dump(par)
        # the checker really ran on every point: its counters are in the
        # per-point metrics of both runs
        for engine in (eng1, eng2):
            result = engine.history[0].results[("SAM-en", "Q3")]
            assert result.metrics["check.commands"] > 0


# ---------------------------------------------------------------------------
# Fuzzer: clean streams pass, injected corruption is caught and shrunk
# ---------------------------------------------------------------------------

class TestFuzz:
    def test_clean_fuzz_passes(self):
        report = run_fuzz(seed=7, cases=12)
        assert report.ok
        assert report.cases == 12
        assert report.commands > 0

    def test_cases_are_deterministic(self):
        assert generate_case(3, 5) == generate_case(3, 5)
        assert generate_case(3, 5) != generate_case(3, 6)

    def test_injected_corruption_is_caught(self, tmp_path):
        report = run_fuzz(
            seed=0, cases=12, inject=(("tRCD", 1),),
            artifacts_dir=tmp_path,
        )
        assert not report.ok
        assert report.failures[0].signature() == "protocol:tRCD"
        # a minimized JSON reproducer was written ...
        assert report.reproducer_path is not None
        payload = json.loads(open(report.reproducer_path).read())
        assert payload["inject"] == [["tRCD", 1]]
        original = generate_case(0, payload["index"], inject=(("tRCD", 1),))
        assert len(payload["ops"]) <= len(original.ops)
        # ... and replaying it reproduces the same failure
        replayed = replay(report.reproducer_path)
        assert replayed.signature() == "protocol:tRCD"

    def test_livelocked_controller_is_reported(self):
        # tRAS below tRCD lets a conflicting request precharge the row
        # before its CAS becomes ready: ACT/PRE thrash forever.  The
        # fuzzer must fail the case, not hang.
        case = FuzzCase(
            seed=0, index=0, scheme="RC-NVM-wd", gather_factor=4,
            record_bytes=64, n_records=64, refresh=False,
            ops=(("sload", 0, 0), ("load", 32, 0), ("load", 48, 0)),
            inject=(("tRAS", 1),),
        )
        result = run_case(case)
        assert result.failed
