"""Tests for the IMDB layer: schemas, queries, and the executor."""

import numpy as np
import pytest

from repro.core import make_scheme
from repro.cpu.ops import Compute, GatherLoad, GatherStore, Load, Store
from repro.imdb import (
    CostModel,
    QueryExecutor,
    TA,
    TB,
    Table,
    TableSchema,
    aggregate_query,
    all_queries,
    arithmetic_query,
    by_name,
    q_queries,
    qs_queries,
    selected_mask,
)
from repro.imdb.query import Conjunct, Predicate, SelectQuery
from repro.sim.config import SystemConfig
from repro.sim.runner import allocate_placements


class TestSchema:
    def test_table3_shapes(self):
        assert TA.record_bytes == 1024 and TA.n_fields == 128
        assert TB.record_bytes == 128 and TB.n_fields == 16

    def test_field_offsets(self):
        assert TA.field_offset(10) == 80
        with pytest.raises(IndexError):
            TB.field_offset(16)

    def test_table_values_deterministic(self):
        a = Table(TB, 100, seed=3)
        b = Table(TB, 100, seed=3)
        assert np.array_equal(a.values, b.values)

    def test_selectivity_threshold(self):
        t = Table(TB, 10_000, seed=1)
        thr = t.selectivity_threshold(0.25)
        frac = (t.column(10) > thr).mean()
        assert abs(frac - 0.25) < 0.02

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            Table(TB, 0)


class TestQueries:
    def test_benchmark_complete(self):
        names = [q.name for q in all_queries()]
        assert names == [f"Q{i}" for i in range(1, 13)] + [
            f"Qs{i}" for i in range(1, 7)
        ]

    def test_q_queries_prefer_column(self):
        assert all(q.prefers == "column" for q in q_queries())

    def test_qs_queries_prefer_row(self):
        assert all(q.prefers == "row" for q in qs_queries())

    def test_q1_shape(self):
        q = by_name()["Q1"]
        assert q.table == "Ta" and q.projected == (3, 4)
        assert q.predicate.conjuncts[0].field == 10

    def test_q2_is_rare(self):
        q = by_name()["Q2"]
        assert q.projected is None
        assert q.predicate.conjuncts[0].selectivity <= 0.05

    def test_q9_two_conjuncts(self):
        q = by_name()["Q9"]
        assert len(q.predicate.conjuncts) == 2

    def test_update_assignments(self):
        q11 = by_name()["Q11"]
        assert dict(q11.assignments).keys() == {3, 4}

    def test_parametric_arithmetic(self):
        q = arithmetic_query(8, 0.5)
        assert len(q.projected) == 8
        assert q.predicate.conjuncts[0].selectivity == 0.5

    def test_parametric_deterministic(self):
        assert arithmetic_query(8, 0.5).projected == arithmetic_query(
            8, 0.5
        ).projected

    def test_aggregate_query(self):
        q = aggregate_query(4, 0.25)
        assert q.func == "AVG" and len(q.fields) == 4

    def test_bad_predicate(self):
        with pytest.raises(ValueError):
            Conjunct(0, ">=", 0.5)
        with pytest.raises(ValueError):
            Conjunct(0, ">", 1.5)


def build(scheme_name, query, n_ta=64, n_tb=64):
    scheme = make_scheme(scheme_name)
    config = SystemConfig()
    tables = {"Ta": Table(TA, n_ta, seed=1), "Tb": Table(TB, n_tb, seed=2)}
    placements = allocate_placements(scheme, tables)
    executor = QueryExecutor(scheme, config, tables, placements)
    return executor.build(query), tables


class TestExecutor:
    def test_baseline_q1_uses_loads_only(self):
        out, _ = build("baseline", by_name()["Q1"])
        kinds = {type(op) for ops in out.ops_per_core for op in ops}
        assert GatherLoad not in kinds
        assert Load in kinds and Compute in kinds

    def test_sam_q1_uses_gathers(self):
        out, _ = build("SAM-en", by_name()["Q1"])
        kinds = {type(op) for ops in out.ops_per_core for op in ops}
        assert GatherLoad in kinds

    def test_qs_queries_never_gather(self):
        """Row-preferring queries run in row mode on every design."""
        for qname in ("Qs1", "Qs3"):
            out, _ = build("SAM-en", by_name()[qname])
            kinds = {type(op) for ops in out.ops_per_core for op in ops}
            assert GatherLoad not in kinds

    def test_update_emits_gather_stores_on_sam(self):
        out, _ = build("SAM-en", by_name()["Q11"], n_tb=2048)
        assert out.selected_records > 0
        kinds = {type(op) for ops in out.ops_per_core for op in ops}
        assert GatherStore in kinds

    def test_update_emits_plain_stores_on_baseline(self):
        out, _ = build("baseline", by_name()["Q11"], n_tb=2048)
        assert out.selected_records > 0
        kinds = {type(op) for ops in out.ops_per_core for op in ops}
        assert Store in kinds and GatherStore not in kinds

    def test_update_mutates_table(self):
        out, tables = build("baseline", by_name()["Q12"], n_tb=2048)
        assert out.result > 0
        updated = (tables["Tb"].column(9) == 13).sum()
        assert updated == out.result

    def test_gather_group_size_respects_factor(self):
        out, _ = build("SAM-en", by_name()["Q3"])
        gathers = [
            op for ops in out.ops_per_core for op in ops
            if isinstance(op, GatherLoad)
        ]
        assert gathers
        assert all(len(g.element_addrs) == 8 for g in gathers)

    def test_selection_prunes_projection_gathers(self):
        """Q2's rare predicate: almost no projection work is emitted."""
        out, _ = build("SAM-en", by_name()["Q2"], n_tb=512)
        loads = sum(
            1 for ops in out.ops_per_core for op in ops
            if isinstance(op, Load)
        )
        gathers = sum(
            1 for ops in out.ops_per_core for op in ops
            if isinstance(op, GatherLoad)
        )
        # predicate gathers dominate; record reads only for the rare hits
        assert gathers >= 512 // 8
        assert loads <= out.selected_records * 2

    def test_insert_emits_full_line_stores(self):
        out, _ = build("baseline", by_name()["Qs5"])
        stores = [
            op for ops in out.ops_per_core for op in ops
            if isinstance(op, Store)
        ]
        assert stores and all(s.size == 64 for s in stores)

    def test_join_result_matches_numpy(self):
        out, tables = build("baseline", by_name()["Q8"], n_ta=64, n_tb=64)
        ta, tb = tables["Ta"], tables["Tb"]
        expected = 0
        tb_keys = {}
        for v in tb.column(9):
            tb_keys[int(v)] = tb_keys.get(int(v), 0) + 1
        for v in ta.column(9):
            expected += tb_keys.get(int(v), 0)
        assert out.result == expected

    def test_round_robin_partitions_cover_all_records(self):
        scheme = make_scheme("SAM-en")
        config = SystemConfig()
        tables = {"Ta": Table(TA, 100, seed=1), "Tb": Table(TB, 64, seed=2)}
        placements = allocate_placements(scheme, tables)
        ex = QueryExecutor(scheme, config, tables, placements)
        parts = ex.lowering.partition(
            100, ex.planner.batch_records(), placements["Ta"]
        )
        covered = sorted(
            r for segs in parts for bs, be in segs for r in range(bs, be)
        )
        assert covered == list(range(100))

    def test_partition_respects_vertical_granularity(self):
        scheme = make_scheme("RC-NVM-wd")
        config = SystemConfig()
        tables = {"Ta": Table(TA, 1024, seed=1),
                  "Tb": Table(TB, 64, seed=2)}
        placements = allocate_placements(scheme, tables)
        ex = QueryExecutor(scheme, config, tables, placements)
        parts = ex.lowering.partition(
            1024, ex.planner.batch_records(), placements["Ta"]
        )
        # chunk boundaries respect the vertical group (64 records)
        starts = [segs[0][0] for segs in parts if segs]
        assert all(s % 64 == 0 for s in starts)

    def test_selected_mask_matches_selectivity(self):
        scheme = make_scheme("baseline")
        tables = {"Ta": Table(TA, 4096, seed=1),
                  "Tb": Table(TB, 64, seed=2)}
        placements = allocate_placements(scheme, tables)
        ex = QueryExecutor(scheme, SystemConfig(), tables, placements)
        mask = selected_mask(tables["Ta"], Predicate.where(10, ">", 0.25))
        assert abs(mask.mean() - 0.25) < 0.03

    def test_compute_costs_scale_with_selectivity(self):
        q_all = SelectQuery("X", "Ta", (3,), Predicate.where(10, ">", 1.0))
        q_none = SelectQuery("Y", "Ta", (3,), Predicate.where(10, ">", 0.0))
        out_all, _ = build("baseline", q_all)
        out_none, _ = build("baseline", q_none)
        assert out_all.total_ops > out_none.total_ops
