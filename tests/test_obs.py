"""Tests for the observability layer: metrics registry, span profiler,
run artifacts and stall diagnostics."""

import json
import warnings
from dataclasses import dataclass

import pytest

from repro.workloads import make_tables
from repro.imdb.sql import parse
from repro.obs import (
    Observation,
    SimulationStallError,
    build_run_manifest,
    git_describe,
    to_jsonable,
)
from repro.obs.artifacts import ArtifactWriter
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import SpanProfiler
from repro.sim.runner import run_query


def _small_query():
    return parse("SELECT SUM(f9) FROM Ta WHERE f10 > 7500", name="t")


# --------------------------------------------------------------- metrics


class TestMetricsRegistry:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.value("a") == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        reg.gauge("g").set(7.5)
        assert reg.value("g") == 7.5

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_buckets(self):
        h = Histogram("h", (10, 20, 30))
        for v in (5, 15, 25, 99):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.total == 4
        assert h.mean == pytest.approx(36.0)

    def test_histogram_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", (3, 2, 1))

    def test_histogram_quantile(self):
        h = Histogram("h", (10, 20, 40))
        for _ in range(9):
            h.observe(5)
        h.observe(35)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 40

    def test_publish_struct(self):
        @dataclass
        class S:
            reads: int = 7
            label: str = "no"  # non-numeric fields are skipped
            flag: bool = True  # bools are skipped too

        reg = MetricsRegistry()
        reg.publish_struct("dram", S())
        assert reg.value("dram.reads") == 7
        assert "dram.label" not in reg
        assert "dram.flag" not in reg

    def test_as_dict_and_render(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(2)
        reg.histogram("h", (1, 2)).observe(1)
        snap = reg.as_dict()
        assert snap["n"] == 2
        assert snap["h"]["type"] == "histogram"
        text = reg.render()
        assert "n" in text and "h" in text

    def test_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics)"

    # ---- histogram edge cases

    def test_empty_histogram_mean_and_quantile(self):
        h = Histogram("h", (10, 20))
        assert h.mean == 0.0
        assert h.quantile(0.5) == 0.0
        assert h.total == 0

    def test_quantile_out_of_range_raises(self):
        h = Histogram("h", (10,))
        h.observe(5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_extremes(self):
        h = Histogram("h", (10, 20))
        h.observe(5)
        h.observe(99)  # overflow bucket maps to last finite bound
        assert h.quantile(0.0) == 10
        assert h.quantile(1.0) == 20

    def test_histogram_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", ())

    def test_as_dict_sorted_by_name(self):
        reg = MetricsRegistry()
        reg.counter("zeta").inc()
        reg.counter("alpha").inc()
        reg.gauge("mid").set(1)
        assert list(reg.as_dict()) == ["alpha", "mid", "zeta"]
        assert reg.names() == ["alpha", "mid", "zeta"]

    def test_render_rows_follow_sorted_order(self):
        reg = MetricsRegistry()
        reg.counter("b.second").inc()
        reg.counter("a.first").inc()
        lines = reg.render().splitlines()
        assert lines[0].startswith("a.first")
        assert lines[1].startswith("b.second")


# ----------------------------------------------------------------- spans


class TestSpanProfiler:
    def test_nesting(self):
        prof = SpanProfiler()
        with prof.span("outer"):
            with prof.span("inner"):
                pass
        assert prof.root.name == "outer"
        assert [c.name for c in prof.root.children] == ["inner"]

    def test_cycle_clock(self):
        t = {"now": 10}
        prof = SpanProfiler(clock=lambda: t["now"])
        span = prof.begin("work")
        t["now"] = 50
        prof.end(span)
        assert span.cycles == 40

    def test_mismatched_end_raises(self):
        prof = SpanProfiler()
        a = prof.begin("a")
        prof.begin("b")
        with pytest.raises(RuntimeError):
            prof.end(a)

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            SpanProfiler().end()

    def test_synthetic_spans(self):
        prof = SpanProfiler()
        with prof.span("run") as run:
            pass
        prof.add(run, "bank0", 5, 25, activations=3)
        child = run.children[0]
        assert child.cycles == 20 and child.meta["activations"] == 3

    def test_render_and_dict(self):
        prof = SpanProfiler()
        with prof.span("run"):
            with prof.span("phase"):
                pass
        text = prof.render()
        assert "run" in text and "phase" in text
        tree = prof.to_dict()
        assert tree[0]["name"] == "run"
        assert tree[0]["children"][0]["name"] == "phase"

    def test_render_empty(self):
        assert SpanProfiler().render() == "(no spans)"


# ------------------------------------------------------------- artifacts


class TestArtifacts:
    def test_to_jsonable_handles_common_shapes(self):
        @dataclass
        class D:
            x: int
            y: tuple

        out = to_jsonable({"d": D(1, (2, 3)), "s": {4}})
        assert out["d"] == {"x": 1, "y": [2, 3]}
        assert out["s"] == [4]

    def test_to_jsonable_falls_back_to_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert to_jsonable(Opaque()) == "<opaque>"

    def test_git_describe(self):
        rev = git_describe()
        assert rev is None or isinstance(rev, str)

    def test_writer_roundtrip(self, tmp_path):
        writer = ArtifactWriter(tmp_path / "a")
        path = writer.write_json("x.json", {"k": (1, 2)})
        assert json.loads(path.read_text()) == {"k": [1, 2]}


class TestRunArtifacts:
    @pytest.fixture(scope="class")
    def run(self):
        obs = Observation(trace=True)
        result = run_query("SAM-en", _small_query(), make_tables(128, 128),
                           observe=obs)
        return obs, result

    def test_manifest_contents(self, run):
        _obs, result = run
        manifest = build_run_manifest(result)
        assert manifest["scheme"] == "SAM-en"
        assert manifest["cycles"] == result.cycles
        assert manifest["config"]["cores"] == 4
        assert manifest["metrics"]["dram.reads"] > 0
        assert manifest["spans"]["name"] == "run_query"
        names = [c["name"] for c in manifest["spans"]["children"]]
        assert names[:3] == ["allocate", "build", "execute"]
        json.dumps(manifest)  # fully serializable

    def test_manifest_written_to_disk(self, tmp_path):
        obs = Observation(artifacts_dir=tmp_path)
        run_query("SAM-en", _small_query(), make_tables(128, 128),
                  observe=obs)
        assert obs.manifest_path is not None
        manifest = json.loads(obs.manifest_path.read_text())
        assert manifest["kind"] == "run"
        assert manifest["metrics"]["sim.cycles"] > 0

    def test_manifest_schema_v2_iso_created(self, tmp_path):
        import time

        from repro.obs.artifacts import MANIFEST_SCHEMA_VERSION, iso_utc

        obs = Observation(artifacts_dir=tmp_path)
        run_query("SAM-en", _small_query(), make_tables(128, 128),
                  observe=obs)
        manifest = json.loads(obs.manifest_path.read_text())
        assert MANIFEST_SCHEMA_VERSION >= 2
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        # ISO-8601 UTC sits next to the epoch float and agrees with it
        assert manifest["created"] == iso_utc(manifest["created_unix"])
        time.strptime(manifest["created"], "%Y-%m-%dT%H:%M:%SZ")

    def test_artifacts_shortcut_param(self, tmp_path):
        run_query("SAM-en", _small_query(), make_tables(128, 128),
                  artifacts=str(tmp_path))
        assert list(tmp_path.glob("run-*.json"))

    def test_trace_jsonl_export(self, run, tmp_path):
        obs, _result = run
        path = obs.tracer.export_jsonl(tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(obs.tracer.events)
        event = json.loads(lines[0])
        assert {"cycle", "command", "rank", "bank", "row"} <= set(event)

    def test_metrics_on_result(self, run):
        _obs, result = run
        assert result.metrics["dram.reads"] == result.memory_stats.reads
        assert result.metrics["core.misses"] == result.core_stats["misses"]
        assert result.metrics["sim.events"] > 0
        assert 0.0 < result.metrics["sim.event_budget_used"] < 1.0

    def test_power_priced_from_registry(self, run):
        # the registry is the power model's source: pricing the raw
        # struct must agree with what the run reported
        from repro.core.registry import make_scheme
        from repro.power.model import PowerModel

        _obs, result = run
        scheme = make_scheme("SAM-en")
        direct = PowerModel(
            scheme.power_config, scheme.timing, scheme.geometry
        ).evaluate(result.memory_stats, result.cycles)
        assert direct.total_nj == pytest.approx(result.power.total_nj)

    def test_tracer_chains_ring(self, run):
        obs, _result = run
        # the full tracer was attached on top of the stall ring; both see
        # the same command stream
        assert obs.tracer is not None
        assert len(obs.ring) > 0
        assert obs.recent_events(5)[-1][0] == obs.tracer.events[-1].cycle


# ------------------------------------------------------------ diagnostics


class TestStallDiagnostics:
    def _force_stall(self):
        with pytest.raises(SimulationStallError) as info:
            run_query("SAM-en", _small_query(), make_tables(512, 512),
                      max_events=200)
        return info.value

    def test_forced_stall_report(self):
        err = self._force_stall()
        report = err.report
        assert "event budget" in report.reason
        assert report.scheme == "SAM-en"
        assert report.banks, "per-bank state missing"
        assert report.recent_events, "trace ring missing"
        assert report.unfinished_cores
        assert report.read_queue <= report.read_queue_capacity

    def test_stall_render_and_dict(self):
        err = self._force_stall()
        text = str(err)
        assert "stall at cycle" in text
        assert "open banks" in text
        assert "last" in text  # recent command listing
        payload = err.report.to_dict()
        json.dumps(payload)
        assert payload["cycle"] == err.report.cycle

    def test_stall_is_runtime_error(self):
        # callers catching the old RuntimeError keep working
        with pytest.raises(RuntimeError):
            run_query("SAM-en", _small_query(), make_tables(512, 512),
                      max_events=200)


# --------------------------------------------------- runner health metrics


class TestRunnerHealthMetrics:
    def test_event_budget_warning(self):
        # run once to learn the event count, then rerun with a budget
        # tight enough to cross the near-runaway threshold but not stall
        tables = make_tables(128, 128)
        first = run_query("SAM-en", _small_query(), tables)
        events = int(first.metrics["sim.events"])
        tables = make_tables(128, 128)
        with pytest.warns(RuntimeWarning, match="event budget"):
            result = run_query("SAM-en", _small_query(), tables,
                               max_events=int(events * 1.5))
        assert result.metrics["sim.events_near_limit"] == 1
        assert result.metrics["sim.event_budget_used"] > 0.5

    def test_bus_utilization_overflow_not_clamped(self):
        from types import SimpleNamespace

        from repro.sim.runner import _bus_utilization

        obs = Observation()
        scheme = SimpleNamespace(name="s")
        with pytest.warns(RuntimeWarning, match="utilization"):
            value = _bus_utilization(obs, busy=150, cycles=100,
                                     scheme=scheme, workload_name="q")
        assert value == pytest.approx(1.5)
        assert obs.registry.value("sim.bus_utilization_overflow") == 1
        assert obs.registry.value("sim.bus_utilization_raw") == \
            pytest.approx(1.5)

    def test_bus_utilization_normal_path(self):
        from types import SimpleNamespace

        from repro.sim.runner import _bus_utilization

        obs = Observation()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            value = _bus_utilization(obs, busy=50, cycles=100,
                                     scheme=SimpleNamespace(name="s"),
                                     workload_name="q")
        assert value == 0.5
        assert "sim.bus_utilization_overflow" not in obs.registry
