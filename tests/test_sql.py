"""Tests for the SQL front end (the Table 3 statement subset)."""

import pytest

from repro.imdb.query import (
    AggregateQuery,
    InsertQuery,
    JoinQuery,
    SelectQuery,
    UpdateQuery,
)
from repro.imdb.sql import SQLError, parse


class TestSelect:
    def test_q1_shape(self):
        q = parse("SELECT f3, f4 FROM Ta WHERE f10 > 7500")
        assert isinstance(q, SelectQuery)
        assert q.table == "Ta"
        assert q.projected == (3, 4)
        conj = q.predicate.conjuncts[0]
        assert conj.field == 10 and conj.op == ">"
        assert conj.selectivity == pytest.approx(0.25)

    def test_select_star(self):
        q = parse("SELECT * FROM Tb WHERE f10 > 9900")
        assert q.projected is None
        assert q.predicate.conjuncts[0].selectivity == pytest.approx(0.01)

    def test_limit(self):
        q = parse("SELECT * FROM Ta LIMIT 1024")
        assert q.limit == 1024 and q.prefers == "row"

    def test_two_conjuncts(self):
        q = parse("SELECT f3, f4 FROM Ta WHERE f1 > 5000 AND f9 < 5000")
        assert len(q.predicate.conjuncts) == 2
        assert q.predicate.conjuncts[1].op == "<"
        assert q.predicate.conjuncts[1].selectivity == pytest.approx(0.5)

    def test_no_predicate(self):
        q = parse("SELECT f1 FROM Ta")
        assert q.predicate is None

    def test_case_insensitive_keywords(self):
        q = parse("select f1 from Ta where f2 > 5000")
        assert isinstance(q, SelectQuery)


class TestAggregate:
    def test_sum(self):
        q = parse("SELECT SUM(f9) FROM Ta WHERE f10 > 7500")
        assert isinstance(q, AggregateQuery)
        assert q.func == "SUM" and q.fields == (9,)

    def test_avg_multi(self):
        q = parse("SELECT AVG(f1), AVG(f2) FROM Ta WHERE f0 < 2500")
        assert q.func == "AVG" and q.fields == (1, 2)

    def test_mixed_functions_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT AVG(f1), SUM(f2) FROM Ta")


class TestUpdateInsert:
    def test_update(self):
        q = parse("UPDATE Tb SET f3 = 7, f4 = 11 WHERE f10 = 100")
        assert isinstance(q, UpdateQuery)
        assert q.assignments == ((3, 7), (4, 11))
        assert q.predicate.conjuncts[0].op == "=="

    def test_update_requires_where(self):
        with pytest.raises(SQLError):
            parse("UPDATE Tb SET f3 = 7")

    def test_bulk_insert_count(self):
        q = parse("INSERT INTO Ta VALUES 512")
        assert isinstance(q, InsertQuery)
        assert q.n_records == 512

    def test_tuple_insert(self):
        q = parse("INSERT INTO Tb VALUES (1, 2, 3), (4, 5, 6)")
        assert q.n_records == 2


class TestJoin:
    def test_q8(self):
        q = parse(
            "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9"
        )
        assert isinstance(q, JoinQuery)
        assert q.key_field == 9
        assert q.build_table == "Tb" and q.probe_table == "Ta"
        assert q.project_probe == 3 and q.project_build == 4

    def test_q7_with_extra_compare(self):
        q = parse(
            "SELECT Ta.f3, Tb.f4 FROM Ta, Tb "
            "WHERE Ta.f1 > Tb.f1 AND Ta.f9 = Tb.f9"
        )
        assert q.key_field == 9 and q.extra_compare_field == 1

    def test_join_needs_key(self):
        with pytest.raises(SQLError):
            parse(
                "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f1 > Tb.f1"
            )


class TestErrors:
    def test_garbage(self):
        with pytest.raises(SQLError):
            parse("DROP TABLE Ta")

    def test_bad_field_name(self):
        with pytest.raises(SQLError):
            parse("SELECT foo FROM Ta")

    def test_trailing_tokens(self):
        with pytest.raises(SQLError):
            parse("SELECT f1 FROM Ta WHERE f2 > 5 GROUP")

    def test_untokenizable(self):
        with pytest.raises(SQLError):
            parse("SELECT f1 FROM Ta WHERE f2 > 'abc'")


class TestErrorPositions:
    """Every rejection names the character offset of the offender."""

    def _error(self, statement: str) -> SQLError:
        with pytest.raises(SQLError) as info:
            parse(statement)
        return info.value

    def test_malformed_token_position(self):
        statement = "SELECT f1 FROM Ta WHERE f2 # 5"
        err = self._error(statement)
        assert err.pos == statement.index("#")
        assert f"at position {err.pos}" in str(err)

    def test_unterminated_string_literal(self):
        statement = "SELECT 'oops FROM Ta"
        err = self._error(statement)
        assert "unterminated string literal" in str(err)
        assert err.pos == statement.index("'")

    def test_string_literal_is_tokenized_but_rejected(self):
        statement = "SELECT f1 FROM Ta WHERE f2 > 'abc'"
        err = self._error(statement)
        assert err.pos == statement.index("'abc'")
        assert "at position" in str(err)

    def test_unknown_leading_keyword(self):
        err = self._error("SELEKT f1 FROM Ta")
        assert "must start with SELECT" in str(err)
        assert err.pos == 0

    def test_trailing_junk_position(self):
        statement = "SELECT f1 FROM Ta WHERE f2 > 5 garbage"
        err = self._error(statement)
        assert "trailing tokens" in str(err)
        assert err.pos == statement.index("garbage")

    def test_truncated_statement_points_at_the_end(self):
        statement = "SELECT f1 FROM Ta LIMIT"
        err = self._error(statement)
        assert err.pos == len(statement)

    def test_update_assignment_value_position(self):
        statement = "UPDATE Ta SET f3 = 'x' WHERE f10 = 1"
        err = self._error(statement)
        assert err.pos == statement.index("'x'")


class TestExplainRoundTrip:
    """parse -> plan -> EXPLAIN works for every statement family."""

    STATEMENTS = {
        "project": "SELECT f3, f4 FROM Ta WHERE f10 > 7500",
        "select-star": "SELECT * FROM Tb WHERE f10 > 9900",
        "aggregate": "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
        "update": "UPDATE Tb SET f3 = 7 WHERE f10 = 100",
        "insert": "INSERT INTO Ta VALUES 64",
        "join": "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9",
    }

    @pytest.mark.parametrize("family", sorted(STATEMENTS))
    def test_family_round_trips(self, family):
        from repro.workloads import make_tables
        from repro.imdb.planner import plan_for

        query = parse(self.STATEMENTS[family], name=f"rt-{family}")
        tables = make_tables(128, 256)
        plan = plan_for("SAM-en", query, tables)
        text = plan.explain()
        assert text.startswith("PhysicalPlan")
        assert f"rt-{family}" in text
        payload = plan.to_dict()
        assert payload["query"] == f"rt-{family}"
        assert payload["mode"] in ("row", "column")


class TestEndToEnd:
    def test_parsed_query_runs(self):
        from repro.workloads import make_tables
        from repro.sim import run_query

        q = parse("SELECT SUM(f9) FROM Ta WHERE f10 > 7500", name="sql-q3")
        result = run_query("SAM-en", q, make_tables(128, 128))
        assert result.query == "sql-q3"
        assert isinstance(result.result, dict)

    def test_parsed_matches_builtin_q3(self):
        from repro.workloads import make_tables
        from repro.imdb import by_name
        from repro.sim import run_query

        sql_q = parse("SELECT SUM(f9) FROM Ta WHERE f10 > 7500")
        builtin = by_name()["Q3"]
        a = run_query("baseline", sql_q, make_tables(128, 128))
        b = run_query("baseline", builtin, make_tables(128, 128))
        assert a.result == b.result
        assert a.cycles == b.cycles
