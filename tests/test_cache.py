"""Tests for the sector cache and the hierarchy."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.sector import SectorCache, full_mask


def small_cache(sectors=4, ways=2, sets=4):
    return SectorCache(
        size_bytes=ways * sets * 64, ways=ways, sectors=sectors
    )


class TestSectorCache:
    def test_cold_miss(self):
        c = small_cache()
        hit, missing = c.lookup(0, 0b0001)
        assert not hit and missing == 0b0001

    def test_fill_then_hit(self):
        c = small_cache()
        c.fill(0, 0b1111)
        hit, missing = c.lookup(0, 0b0110)
        assert hit and missing == 0

    def test_partial_sector_fill(self):
        """A strided fill validates only its sector (Section 5.1.1)."""
        c = small_cache()
        c.fill(0, 0b0010)
        hit, missing = c.lookup(0, 0b0010)
        assert hit
        hit, missing = c.lookup(0, 0b0001)
        assert not hit and missing == 0b0001
        assert c.stats.partial_hits == 1

    def test_incremental_sector_fills_accumulate(self):
        c = small_cache()
        for s in range(4):
            c.fill(0, 1 << s)
        hit, _ = c.lookup(0, full_mask(4))
        assert hit

    def test_lru_eviction(self):
        c = small_cache(ways=2, sets=1)
        c.fill(0, 0b1111)
        c.fill(64, 0b1111)
        c.lookup(0, 0b0001)  # touch line 0 -> line 64 is LRU
        victim = c.fill(128, 0b1111)
        assert victim is not None and victim.line_addr == 64

    def test_dirty_eviction_reports_writeback(self):
        c = small_cache(ways=1, sets=1)
        c.fill(0, 0b1111, dirty=True)
        victim = c.fill(64, 0b1111)
        assert victim.dirty_mask == 0b1111
        assert c.stats.writebacks == 1

    def test_mark_dirty_requires_valid_sectors(self):
        c = small_cache()
        assert not c.mark_dirty(0, 0b0001)
        c.fill(0, 0b0001)
        assert c.mark_dirty(0, 0b0001)
        assert not c.mark_dirty(0, 0b0010)  # sector not valid

    def test_sector_mask_for(self):
        c = small_cache(sectors=4)
        assert c.sector_mask_for(0, 8) == 0b0001
        assert c.sector_mask_for(16, 16) == 0b0010
        assert c.sector_mask_for(8, 16) == 0b0011
        assert c.sector_mask_for(64 + 48, 16) == 0b1000

    def test_mask_rejects_line_crossing(self):
        c = small_cache()
        with pytest.raises(ValueError):
            c.sector_mask_for(60, 8)

    def test_eight_sector_configuration(self):
        """SSC-DSD granularity: 8 sectors of 8B."""
        c = small_cache(sectors=8)
        assert c.sector_bytes == 8
        assert c.sector_mask_for(24, 8) == 1 << 3

    def test_invalidate(self):
        c = small_cache()
        c.fill(0, 0b1111, dirty=True)
        ev = c.invalidate(0)
        assert ev.dirty_mask == 0b1111
        assert not c.resident(0)

    def test_flush(self):
        c = small_cache()
        c.fill(0, 0b1111, dirty=True)
        c.fill(64, 0b1111)
        dirty = c.flush()
        assert len(dirty) == 1 and dirty[0].line_addr == 0
        assert not c.resident(64)

    def test_hit_rate_stat(self):
        c = small_cache()
        c.fill(0, 0b1111)
        c.lookup(0, 1)
        c.lookup(64, 1)
        assert c.stats.hit_rate == 0.5

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SectorCache(size_bytes=100, ways=3)


class TestHierarchy:
    def make(self, sectors=4):
        cfg = HierarchyConfig(
            l1_bytes=1024, l2_bytes=4096, llc_bytes=16384, sectors=sectors
        )
        return CacheHierarchy(cfg, per_core_l1=2)

    def test_miss_everywhere(self):
        h = self.make()
        res = h.lookup(0, 0, 0b0001)
        assert res.level is None and res.missing_mask == 0b0001

    def test_fill_hits_l1(self):
        h = self.make()
        h.fill_from_memory(0, 0, 0b1111)
        res = h.lookup(0, 0, 0b0001)
        assert res.level == 1

    def test_private_l1(self):
        h = self.make()
        h.fill_from_memory(0, 0, 0b1111)
        res = h.lookup(1, 0, 0b0001)  # other core: L1 miss, L2 hit
        assert res.level == 2

    def test_l2_hit_fills_l1(self):
        h = self.make()
        h.fill_from_memory(0, 0, 0b1111)
        h.lookup(1, 0, 0b0001)
        res = h.lookup(1, 0, 0b0001)
        assert res.level == 1

    def test_llc_capacity_backs_l1(self):
        h = self.make()
        # fill enough lines to overflow L1 (16 lines) but not LLC
        for i in range(64):
            h.fill_from_memory(0, i * 64, 0b1111)
        res = h.lookup(0, 0, 0b0001)
        assert res.level in (2, 3)

    def test_write_hit_marks_dirty(self):
        h = self.make()
        h.fill_from_memory(0, 0, 0b1111)
        res = h.write(0, 0, 0b0001)
        assert res.level is not None
        dirty = h.flush_dirty()
        assert any(e.line_addr == 0 for e in dirty)

    def test_write_miss_reports_fetch(self):
        h = self.make()
        res = h.write(0, 0, 0b0001)
        assert res.level is None and res.missing_mask == 0b0001

    def test_complete_write_fill(self):
        h = self.make()
        h.complete_write_fill(0, 0, 0b0011)
        dirty = h.flush_dirty()
        assert dirty and dirty[0].dirty_mask == 0b0011

    def test_latencies_configured(self):
        h = self.make()
        h.fill_from_memory(0, 0, 0b1111)
        assert h.lookup(0, 0, 1).latency == h.config.l1_latency
        assert h.lookup(1, 0, 1).latency == h.config.l2_latency
