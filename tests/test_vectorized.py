"""Bit-exactness of the vectorized hot paths against their scalar oracles.

The PR-7 hot-path overhaul keeps every original per-bit/per-symbol loop as
a ``*_scalar`` reference implementation.  These properties assert the
table-driven / numpy paths are indistinguishable from them across layouts,
chip counts and random payloads -- and that the incremental FR-FCFS
readiness index issues the exact command stream of the full-recompute
scheduler on fuzzed traces.
"""

import itertools

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

import repro.dram.commands as dram_commands
from repro.check.fuzz import SALP_SCHEMES, generate_case, run_case
from repro.dram import datapath as dp
from repro.dram import iobuffer as io
from repro.ecc.chipkill import ChipAlignedSSC, SSCCodec, SSCDSDCodec
from repro.ecc.rs import ReedSolomon

CHIP_COUNTS = (1, 2, 4, 16, 18)
LAYOUTS = ("default", "transposed")

blocks = st.integers(min_value=0, max_value=(1 << 32) - 1)
lines = st.binary(min_size=64, max_size=64)


# ----------------------------------------------------------- pack / unpack

@pytest.mark.parametrize("n_chips", CHIP_COUNTS)
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_pack_default_matches_scalar(n_chips, data):
    payload = data.draw(
        st.binary(min_size=4 * n_chips, max_size=4 * n_chips)
    )
    got = dp.pack_default(payload, n_chips)
    assert got == dp.pack_default_scalar(payload, n_chips)
    assert dp.unpack_default(got, n_chips) == payload
    assert dp.unpack_default_scalar(got, n_chips) == payload


@pytest.mark.parametrize("n_chips", CHIP_COUNTS)
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_pack_transposed_matches_scalar(n_chips, data):
    payload = data.draw(
        st.binary(min_size=4 * n_chips, max_size=4 * n_chips)
    )
    got = dp.pack_transposed(payload, n_chips)
    assert got == dp.pack_transposed_scalar(payload, n_chips)
    assert dp.unpack_transposed(got, n_chips) == payload
    assert dp.unpack_transposed_scalar(got, n_chips) == payload


@given(lines)
@settings(max_examples=60, deadline=None)
def test_line_packers_match_scalar(line):
    bd = io.pack_line_default(line)
    assert bd == io.pack_line_default_scalar(line)
    assert io.unpack_line_default(bd) == line
    assert io.unpack_line_default_scalar(bd) == line
    bt = io.pack_line_transposed(line)
    assert bt == io.pack_line_transposed_scalar(line)
    assert io.unpack_line_transposed(bt) == line
    assert io.unpack_line_transposed_scalar(bt) == line


def test_pack_rejects_wrong_length():
    with pytest.raises(ValueError):
        dp.pack_default(b"\x00" * 63, 16)
    with pytest.raises(ValueError):
        dp.pack_transposed(b"\x00" * 65, 16)
    with pytest.raises(ValueError):
        io.pack_line_default(b"\x00" * 16)
    with pytest.raises(ValueError):
        io.pack_line_transposed(b"")


# -------------------------------------------------------------- serializers

@given(blocks)
@settings(max_examples=80, deadline=None)
def test_serialize_x4_matches_scalar(block):
    beats = io.serialize_x4(block)
    assert beats == io.serialize_x4_scalar(block)
    assert io.deserialize_x4(beats) == block
    assert io.deserialize_x4_scalar(beats) == block


@given(st.lists(blocks, min_size=4, max_size=4),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=60, deadline=None)
def test_stride_serializers_match_scalar(buffers, n):
    assert io.serialize_stride(buffers, n) == \
        io.serialize_stride_scalar(buffers, n)
    assert io.serialize_stride_2d(buffers, n) == \
        io.serialize_stride_2d_scalar(buffers, n)


@given(blocks, st.integers(min_value=0, max_value=5))
@settings(max_examples=60, deadline=None)
def test_block_column_matches_lane_loop(block, n):
    expected = 0
    for l in range(io.LANES):
        expected |= ((io.lane(block, l) >> (2 * n)) & 0b11) << (2 * l)
    assert io.block_column(block, n) == expected


# ------------------------------------------------------------ ECC batches

RS_PARAMS = ((18, 16, 8), (36, 32, 8), (15, 11, 4))


@pytest.mark.parametrize("n,k,m", RS_PARAMS)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_rs_encode_batch_matches_scalar(n, k, m, data):
    rs = ReedSolomon(n, k, m)
    batch = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=(1 << m) - 1),
                 min_size=k, max_size=k),
        min_size=1, max_size=6,
    ))
    encoded = rs.encode_batch(batch)
    for row, symbols in zip(encoded, batch):
        assert list(row) == rs.encode(symbols)


@pytest.mark.parametrize("n,k,m", RS_PARAMS)
@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_rs_syndromes_batch_matches_scalar(n, k, m, data):
    rs = ReedSolomon(n, k, m)
    batch = data.draw(st.lists(
        st.lists(st.integers(min_value=0, max_value=(1 << m) - 1),
                 min_size=n, max_size=n),
        min_size=1, max_size=6,
    ))
    syndromes = rs.syndromes_batch(batch)
    for row, codeword in zip(syndromes, batch):
        assert list(row) == rs.syndromes(codeword)


def test_rs_batch_rejects_bad_shapes():
    rs = ReedSolomon(18, 16, 8)
    with pytest.raises(ValueError):
        rs.encode_batch([[0] * 17])
    with pytest.raises(ValueError):
        rs.encode_batch([[256] + [0] * 15])
    with pytest.raises(ValueError):
        rs.syndromes_batch([[0] * 17])


@pytest.mark.parametrize("codec_cls", (SSCCodec, SSCDSDCodec))
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_codec_batches_match_scalar(codec_cls, data):
    codec = codec_cls()
    datas = data.draw(st.lists(
        st.binary(min_size=codec.data_bytes, max_size=codec.data_bytes),
        min_size=1, max_size=5,
    ))
    paritys = codec.encode_many(datas)
    assert paritys == [codec.encode(d) for d in datas]
    flips = data.draw(st.lists(
        st.integers(min_value=0, max_value=255),
        min_size=len(datas), max_size=len(datas),
    ))
    corrupted = [
        bytes([p[0] ^ flip]) + p[1:] for p, flip in zip(paritys, flips)
    ]
    assert codec.check_many(datas, corrupted) == [
        codec.check(d, p) for d, p in zip(datas, corrupted)
    ]


@pytest.mark.parametrize("layout", LAYOUTS)
@given(data=st.data())
@settings(max_examples=15, deadline=None)
def test_chip_aligned_batches_match_scalar(layout, data):
    codec = ChipAlignedSSC(layout)
    sectors = data.draw(st.lists(
        st.binary(min_size=16, max_size=16), min_size=1, max_size=6,
    ))
    paritys = codec.encode_sectors(sectors)
    assert paritys == [codec.encode_sector(s) for s in sectors]
    flips = data.draw(st.lists(
        st.integers(min_value=0, max_value=255),
        min_size=len(sectors), max_size=len(sectors),
    ))
    corrupted = [
        bytes([p[0] ^ flip, p[1]]) for p, flip in zip(paritys, flips)
    ]
    assert codec.check_sectors(sectors, corrupted) == [
        codec.check_sector(s, p) for s, p in zip(sectors, corrupted)
    ]
    for sector, parity in zip(sectors, paritys):
        report = codec.decode_sector(sector, parity)
        assert not report.detected_uncorrectable
        assert report.data == sector


# ------------------------------------------------- scheduler equivalence

def _command_stream(case, readiness_index=True, event_wheel=True):
    """One fuzz case replayed under the given scheduler variant.

    Returns ``(command_log, final_cycle, ledger_entries)`` so the
    equivalence tests can diff the full observable behavior: the issued
    command stream, the cycle the trace drained at, and the controller's
    stall attribution."""
    from repro.obs.stalls import StallLedger

    # req_ids must line up between the two replays
    dram_commands._request_ids = itertools.count()
    log = []

    def observe(now, command, request):
        log.append((
            now, command.value,
            None if request is None else request.req_id,
        ))

    ledger = StallLedger()
    result = run_case(case, oracle_data=False,
                      readiness_index=readiness_index,
                      event_wheel=event_wheel,
                      stall_ledger=ledger, on_command=observe)
    assert not result.failed, result.summary()
    return log, result.cycles, [tuple(e) for e in ledger.entries]


@pytest.mark.parametrize("index", range(12))
def test_readiness_index_matches_full_recompute(index):
    """The incremental readiness index must issue the exact command
    stream (cycle, command, request) of the full-recompute scheduler."""
    case = generate_case(seed=20260808, index=index)
    fast, _, _ = _command_stream(case, readiness_index=True)
    slow, _, _ = _command_stream(case, readiness_index=False)
    assert fast == slow
    assert fast  # a silent empty stream would vacuously pass


@pytest.mark.parametrize("index", range(12))
def test_readiness_index_matches_recompute_under_salp(index):
    """Same equivalence over the subarray-aware schemes: the per-subarray
    version keys and the SA_SEL path must invalidate exactly like the
    full recompute."""
    case = generate_case(seed=20260808, index=index, schemes=SALP_SCHEMES)
    fast, _, _ = _command_stream(case, readiness_index=True)
    slow, _, _ = _command_stream(case, readiness_index=False)
    assert fast == slow
    assert fast


@pytest.mark.parametrize("index", range(12))
def test_event_wheel_matches_polling(index):
    """Event-wheel wake-ups must be *exact*: identical command stream,
    final cycle count, and stall ledger as the per-cycle polling
    reference, on the same fuzzed traces the readiness battery replays
    (refresh-heavy cases included -- generate_case mixes them in)."""
    case = generate_case(seed=20260808, index=index)
    wheel = _command_stream(case, event_wheel=True)
    poll = _command_stream(case, event_wheel=False)
    assert wheel == poll
    assert wheel[0]


@pytest.mark.parametrize("index", range(12))
def test_event_wheel_matches_polling_under_salp(index):
    """Same exactness over the subarray-aware schemes, where the dry-run
    memoization must agree with SA_SEL designation and per-subarray
    readiness churn."""
    case = generate_case(seed=20260808, index=index, schemes=SALP_SCHEMES)
    wheel = _command_stream(case, event_wheel=True)
    poll = _command_stream(case, event_wheel=False)
    assert wheel == poll
    assert wheel[0]


@pytest.mark.parametrize("scheme", ("salp1", "masa"))
def test_salp_checked_fuzz_stays_clean(scheme):
    """Short per-scheme checked-fuzz runs (protocol checker + data
    oracles attached); the long stream lives in CI's fuzz job."""
    for index in range(6):
        case = generate_case(seed=1804, index=index, schemes=(scheme,))
        result = run_case(case)
        assert not result.failed, result.summary()
