"""Tests for timing presets, geometry, and address mapping."""

import pytest

from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.geometry import DEFAULT_GEOMETRY, Geometry
from repro.dram.timing import DDR4_2400, RRAM, preset


class TestTiming:
    def test_table2_ddr4_values(self):
        t = DDR4_2400
        assert (t.CL, t.tRCD, t.tRP) == (17, 17, 17)
        assert (t.tRTR, t.tCCD_S, t.tCCD_L) == (2, 4, 6)
        assert t.tMOD_IO == t.tRTR  # Section 5.3

    def test_table2_rram_values(self):
        t = RRAM
        assert (t.CL, t.tRCD, t.tRP) == (17, 35, 1)
        assert t.tREFI == 0  # non-volatile

    def test_rram_write_recovery_much_longer(self):
        assert RRAM.tWR > 5 * DDR4_2400.tWR

    def test_preset_lookup(self):
        assert preset("DDR4-2400") is DDR4_2400
        assert preset("RRAM") is RRAM
        with pytest.raises(KeyError):
            preset("HBM3")

    def test_scaled_increases_array_latencies_only(self):
        t = DDR4_2400.scaled("x", 1.33)
        assert t.tRCD == round(17 * 1.33)
        assert t.tRP == round(17 * 1.33)
        assert t.tRAS == round(39 * 1.33)
        assert t.CL == DDR4_2400.CL  # interface unchanged
        assert t.tBL == DDR4_2400.tBL

    def test_ns_conversion(self):
        assert DDR4_2400.ns(1200) == pytest.approx(1000, rel=0.01)


class TestGeometry:
    def test_table2_organization(self):
        g = DEFAULT_GEOMETRY
        assert g.ranks == 2
        assert g.banks == 16
        assert g.data_chips == 16 and g.parity_chips == 2
        assert g.chip_io_bits == 4

    def test_row_is_8kb(self):
        assert DEFAULT_GEOMETRY.row_bytes == 8192
        assert DEFAULT_GEOMETRY.lines_per_row == 128

    def test_burst_moves_one_cacheline(self):
        assert DEFAULT_GEOMETRY.bytes_per_burst == 64

    def test_data_bus_width(self):
        assert DEFAULT_GEOMETRY.data_bus_bits == 64

    def test_capacity(self):
        g = DEFAULT_GEOMETRY
        # 2 ranks x 16 banks x 128K rows x 8KB = 32 GiB of data
        assert g.capacity_bytes == 2 * 16 * 131072 * 8192

    def test_rows_per_bank(self):
        g = DEFAULT_GEOMETRY
        assert g.rows_per_bank == g.subarrays_per_bank * g.rows_per_subarray


class TestAddressMapper:
    def setup_method(self):
        self.mapper = AddressMapper()

    def test_roundtrip(self):
        for addr in (0, 64, 8192, 123456 * 64, (1 << 30) + 4096):
            decoded = self.mapper.decode(addr)
            assert self.mapper.encode(decoded) == addr

    def test_field_order_offset_first(self):
        # consecutive lines share everything but the column
        a = self.mapper.decode(0)
        b = self.mapper.decode(64)
        assert a.column == 0 and b.column == 1
        assert a.bank == b.bank and a.row == b.row

    def test_row_crossing_changes_bank(self):
        # rw:rk:bk:ch:cl:offset -- the next 8KB region is the next bank
        a = self.mapper.decode(0)
        b = self.mapper.decode(8192)
        assert b.bank == a.bank + 1
        assert a.row == b.row

    def test_rank_bit_above_banks(self):
        a = self.mapper.decode(0)
        b = self.mapper.decode(8192 * 16)
        assert b.rank == 1 and a.rank == 0

    def test_row_above_rank(self):
        stride = 8192 * 16 * 2  # full bank/rank sweep
        b = self.mapper.decode(stride)
        assert b.row == 1 and b.bank == 0 and b.rank == 0

    def test_offset_within_line(self):
        d = self.mapper.decode(100)
        assert d.offset == 36 and d.column == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            self.mapper.decode(-1)

    def test_line_address(self):
        assert self.mapper.line_address(130) == 128

    def test_line_key_ignores_offset(self):
        a = self.mapper.decode(128)
        b = self.mapper.decode(130)
        assert a.line_key() == b.line_key()

    def test_bank_group(self):
        d = DecodedAddress(0, 0, 7, 0, 0, 0)
        assert d.bank_group == 1

    def test_non_power_of_two_geometry_rejected(self):
        with pytest.raises(ValueError):
            AddressMapper(Geometry(ranks=3))
