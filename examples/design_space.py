#!/usr/bin/env python3
"""Design-space tour: granularity, area, power, and the Table 1 matrix.

Walks the trade-offs the paper's Section 6 explores:

* strided granularity (16/8/4 bits per chip <-> SSC vs SSC-DSD symbols),
* silicon and storage overhead of every design,
* power/energy of a scan on each SAM variant,
* the qualitative comparison matrix (Table 1).

Run:  python examples/design_space.py
"""

from repro import by_name, run_query
from repro.core.compare import render_table
from repro.harness.figure14 import render_figure14c
from repro.workloads import make_tables

N_TA, N_TB = 1024, 1024


def granularity_sweep() -> None:
    print("strided granularity (Q3 speedup over baseline):")
    query = by_name()["Q3"]
    base = run_query("baseline", query, make_tables(N_TA, N_TB)).cycles
    for bits, factor in ((16, 2), (8, 4), (4, 8)):
        r = run_query("SAM-en", query, make_tables(N_TA, N_TB),
                      gather_factor=factor)
        print(f"  {bits:2d}-bit symbols ({factor} elements/burst): "
              f"{base / r.cycles:5.2f}x")
    print("  (finer granularity = more strided elements per burst;"
          " 4-bit matches SSC-DSD chipkill)\n")


def power_comparison() -> None:
    print("power/energy of a field scan (Q5) per SAM variant:")
    query = by_name()["Q5"]
    base = run_query("baseline", query, make_tables(N_TA, N_TB))
    print(f"  {'design':10s} {'speedup':>8s} {'power':>10s}"
          f" {'energy-eff':>11s}")
    print(f"  {'baseline':10s} {1.0:7.2f}x {base.power.total_mw:8.0f}mW"
          f" {1.0:10.2f}x")
    for design in ("SAM-sub", "SAM-IO", "SAM-en"):
        r = run_query(design, query, make_tables(N_TA, N_TB))
        print(
            f"  {design:10s} {r.speedup_over(base):7.2f}x"
            f" {r.power.total_mw:8.0f}mW"
            f" {r.energy_efficiency_over(base):10.2f}x"
        )
    print("  (SAM-IO moves four internal bursts per gather -> high power;"
          "\n   SAM-en's fine-grained activation restores x4-class energy)\n")


def main() -> None:
    granularity_sweep()
    power_comparison()
    print("area / storage overhead (Figure 14(c)):")
    print("  " + render_figure14c().replace("\n", "\n  "))
    print()
    print("qualitative comparison (Table 1):")
    print("  " + render_table().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
