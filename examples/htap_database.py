#!/usr/bin/env python3
"""HTAP scenario: one table layout serving transactions *and* analytics.

The motivating workload of the paper (Section 3.1): a hybrid
transactional/analytical database cannot pick one layout -- OLAP scans
want columns, OLTP record operations want rows.  This example runs a mixed
workload on several memory designs and shows that SAM serves both sides
from a single row-store layout:

* analytics  (Q1 project, Q3 sum, Q11 bulk update)   -- strided accesses
* transactions (Qs2 record fetch, Qs4 record filter, Qs6 inserts) -- rows

Run:  python examples/htap_database.py
"""

from repro import by_name, run_query
from repro.workloads import geomean, make_tables

ANALYTICS = ("Q1", "Q3", "Q11")
TRANSACTIONS = ("Qs2", "Qs4", "Qs6")
DESIGNS = ("SAM-en", "SAM-sub", "GS-DRAM-ecc", "RC-NVM-wd")

N_TA, N_TB = 1024, 2048


def run_suite(design: str, queries) -> dict:
    out = {}
    for qname in queries:
        tables = make_tables(N_TA, N_TB)
        out[qname] = run_query(design, by_name()[qname], tables).cycles
    return out


def main() -> None:
    print(f"tables: Ta {N_TA} x 1KB records, Tb {N_TB} x 128B records\n")
    base_olap = run_suite("baseline", ANALYTICS)
    base_oltp = run_suite("baseline", TRANSACTIONS)

    header = (
        f"{'design':14s} {'analytics':>12s} {'transactions':>14s}   verdict"
    )
    print(header)
    print("-" * len(header))
    for design in DESIGNS:
        olap = run_suite(design, ANALYTICS)
        oltp = run_suite(design, TRANSACTIONS)
        olap_speed = geomean(
            base_olap[q] / olap[q] for q in ANALYTICS
        )
        oltp_speed = geomean(
            base_oltp[q] / oltp[q] for q in TRANSACTIONS
        )
        if olap_speed > 2 and oltp_speed > 0.97:
            verdict = "fast analytics, transactions unharmed"
        elif olap_speed > 2:
            verdict = "fast analytics, but transactions pay"
        else:
            verdict = "limited analytics gain"
        print(
            f"{design:14s} {olap_speed:11.2f}x {oltp_speed:13.2f}x   "
            f"{verdict}"
        )

    print("\n(speedups are geometric means over each query group,")
    print(" normalized to a commodity row-store DRAM baseline)")


if __name__ == "__main__":
    main()
