#!/usr/bin/env python3
"""Quickstart: accelerate one strided query with SAM.

Builds a small in-memory database table, runs a column-scan query (SUM of
one field with a filter) on commodity DRAM and on SAM-en, and prints the
speedup along with the memory-command behaviour that produces it.

Run:  python examples/quickstart.py
"""

from repro import Table, TA, TB, by_name, run_query


def main() -> None:
    # A wide table (128 x 8B fields -> 1KB records) and a narrow one.
    tables = {
        "Ta": Table(TA, n_records=2048, seed=1),
        "Tb": Table(TB, n_records=2048, seed=2),
    }

    # Q3: SELECT SUM(f9) FROM Ta WHERE f10 > x  (25% selectivity)
    query = by_name()["Q3"]

    baseline = run_query("baseline", query, tables)
    # re-create tables: updates may mutate them and placement is per-run
    tables = {
        "Ta": Table(TA, n_records=2048, seed=1),
        "Tb": Table(TB, n_records=2048, seed=2),
    }
    sam = run_query("SAM-en", query, tables)

    assert sam.result == baseline.result, "both runs compute the query"

    print(f"query: {query.name}  (answer: {sam.result})")
    print(f"  baseline : {baseline.cycles:8d} memory cycles "
          f"({baseline.ns / 1000:.1f} us)")
    print(f"  SAM-en   : {sam.cycles:8d} memory cycles "
          f"({sam.ns / 1000:.1f} us)")
    print(f"  speedup  : {sam.speedup_over(baseline):.2f}x")
    print()
    print("why: one stride-mode burst returns 8 strided fields instead of")
    print("one 64B line per record --")
    print(f"  baseline reads : {baseline.memory_stats.reads:6d} bursts")
    print(f"  SAM-en reads   : {sam.memory_stats.reads:6d} bursts "
          f"({sam.memory_stats.gather_reads} of them gathers)")
    print(f"  mode switches  : {sam.memory_stats.mode_switches}")
    print()
    print(f"energy: baseline {baseline.power.total_nj / 1e3:.1f} uJ, "
          f"SAM-en {sam.power.total_nj / 1e3:.1f} uJ "
          f"({sam.energy_efficiency_over(baseline):.2f}x more efficient)")


if __name__ == "__main__":
    main()
