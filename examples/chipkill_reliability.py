#!/usr/bin/env python3
"""Chipkill under strided access: SAM vs GS-DRAM, bit for bit.

This example uses the *functional* datapath (real bytes through the
common-die I/O buffers) to demonstrate the paper's reliability argument:

1. store four cachelines with SSC chipkill parity,
2. kill one DRAM chip (all of its bits corrupt),
3. perform a SAM stride-mode gather -- every strided element arrives as a
   complete 18-symbol codeword, so the dead chip is corrected;
4. contrast with GS-DRAM, whose gathers mix rows across chips so the
   parity for the gathered data is simply not in the transfer.

Run:  python examples/chipkill_reliability.py
"""

import random

from repro.dram.datapath import RankDatapath
from repro.ecc.chipkill import ChipAlignedSSC
from repro.ecc.layout import gs_dram_gather_check, sam_gather_check

rng = random.Random(2021)


def main() -> None:
    codec = ChipAlignedSSC(layout="default")
    dp = RankDatapath(layout="default")  # SAM-en's 2-D buffer layout

    lines = [bytes(rng.randrange(256) for _ in range(64)) for _ in range(4)]
    for col, line in enumerate(lines):
        parity = b"".join(
            codec.encode_sector(line[16 * s : 16 * s + 16])
            for s in range(4)
        )
        dp.write_line(bank=0, row=0, column=col, line=line, parity=parity)
    print("stored 4 cachelines + SSC chipkill parity (16 data + 2 parity"
          " chips)")

    # --- kill chip 11: every block it holds returns garbage -------------
    dead_chip = 11
    storage = dp.data_chips[dead_chip].row(0, 0)
    for col in range(4):
        storage[col] ^= rng.randrange(1, 1 << 32)
    print(f"injected failure: chip {dead_chip} returns corrupted data\n")

    # --- SAM gather: one burst, four strided sectors, all correctable ---
    print("SAM stride-mode gather (sector 2 of each line):")
    pairs = dp.gather_sectors(0, 0, [0, 1, 2, 3], sector=2,
                              with_parity=True)
    for j, (data, parity) in enumerate(pairs):
        report = codec.decode_sector(data, parity)
        want = lines[j][32:48]
        status = "corrected" if report.data == want else "WRONG"
        print(f"  element {j}: corrupted symbol at chip"
              f" {report.corrected_chips} -> {status}")
        assert report.data == want
    print("  => chipkill held: the strided transfer carries whole"
          " codewords\n")

    # --- structural comparison ------------------------------------------
    sam = sam_gather_check()
    gs = gs_dram_gather_check()
    print("codeword-integrity check per gather type:")
    print(f"  SAM     : complete={sam.complete}  ({sam.reason})")
    print(f"  GS-DRAM : complete={gs.complete}  ({gs.reason})")
    print("\nGS-DRAM's gather pulls each line from a different row, but a"
          "\nparity chip can only follow one row address -- the gathered"
          "\ndata arrives without its check symbols, so a failed chip is"
          "\nsilent data corruption (Section 3.3.1).")


if __name__ == "__main__":
    main()
