#!/usr/bin/env python3
"""SQL workbench: run ad-hoc statements on any memory design.

Uses the SQL front end to express the paper's Table 3 statements
literally, then executes them on the cycle-level system and reports the
answer, time, and memory behaviour.  The same functionality is available
from the shell:

    python -m repro query "SELECT SUM(f9) FROM Ta WHERE f10 > 7500" \\
        --scheme SAM-en --baseline

Run:  python examples/sql_workbench.py
"""

from repro.workloads import make_tables
from repro.imdb.sql import parse
from repro.sim import run_query

STATEMENTS = [
    "SELECT f3, f4 FROM Ta WHERE f10 > 7500",
    "SELECT SUM(f9) FROM Ta WHERE f10 > 7500",
    "SELECT AVG(f1), AVG(f2) FROM Tb WHERE f0 < 2500",
    "SELECT Ta.f3, Tb.f4 FROM Ta, Tb WHERE Ta.f9 = Tb.f9",
    "UPDATE Tb SET f3 = 7, f4 = 11 WHERE f10 = 100",
    "SELECT * FROM Ta LIMIT 256",
]

N_TA, N_TB = 1024, 2048


def main() -> None:
    print(f"tables: Ta {N_TA} x 1KB, Tb {N_TB} x 128B\n")
    for statement in STATEMENTS:
        query = parse(statement)
        base = run_query("baseline", query, make_tables(N_TA, N_TB))
        sam = run_query("SAM-en", query, make_tables(N_TA, N_TB))
        assert str(sam.result) == str(base.result)
        gathers = sam.memory_stats.gather_reads + (
            sam.memory_stats.gather_writes
        )
        print(f"sql> {statement}")
        print(
            f"     -> {sam.result}   "
            f"[SAM-en {sam.cycles} cyc, {gathers} gathers, "
            f"speedup {base.cycles / sam.cycles:.2f}x, "
            f"bus {sam.bus_utilization:.0%}]"
        )
    print("\n(every SAM-en answer was checked against the baseline run)")


if __name__ == "__main__":
    main()
